package portfolio

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uav-coverage/uavnet/internal/core"
)

// DefaultBudget is the per-member evaluation budget when Options.SolverBudget
// is zero. At the ~µs-per-evaluation cost of the incremental pipeline this is
// tenths of a second per member — and, unlike enumeration, independent of m.
const DefaultBudget = 50_000

// SolverMembers resolves an Options.Solver value to the member names it
// races: one name for a single member, all four for "portfolio".
func SolverMembers(solver string) ([]string, error) {
	if solver == "portfolio" {
		return Members(), nil
	}
	if memberIndex(solver) >= 0 {
		return []string{solver}, nil
	}
	return nil, fmt.Errorf("portfolio: unknown solver %q (have %v and \"portfolio\")", solver, Members())
}

// newSolver builds one member by canonical name.
func newSolver(name string, p *problem, ev *core.SubsetEvaluator, seed, budget int64) (Solver, error) {
	switch name {
	case "anneal":
		return newAnneal(p, ev, seed, budget), nil
	case "tabu":
		return newTabu(p, ev, seed, budget), nil
	case "grasp":
		return newGrasp(p, ev, seed, budget), nil
	case "genetic":
		return newGenetic(p, ev, seed, budget), nil
	}
	return nil, fmt.Errorf("portfolio: unknown member %q", name)
}

// Race runs the metaheuristic members named by opts.Solver concurrently over
// the instance, each under its own evaluation budget, and returns the best
// deployment any member found — finalized through the exact Algorithm 2
// pipeline, so it satisfies every constraint verify.CheckDeployment checks.
//
// Run control mirrors core.Approx: the race honors ctx (members stop at the
// next step boundary), reports core.Progress snapshots through opts.Progress,
// and a cancelled run returns its best-so-far deployment with Status
// StatusStopped TOGETHER with ctx.Err() and a resumable Checkpoint. Resuming
// (the resume argument; nil for a fresh run) continues every member's exact
// trajectory, so an interrupted-then-resumed race is byte-identical to an
// uninterrupted one. The reduction is deterministic: most served users, ties
// to the canonical member order — never arrival order or wall clock.
//
// Unsupported enumeration options (MaxSubsets, Shard, StopAfter, Resume,
// RequiredCells) are rejected: the first three control the enumeration index
// space, which a local search does not have; gateway-constrained searches
// need the enumeration's required-cell filter.
func Race(ctx context.Context, in *core.Instance, opts core.Options, resume *Checkpoint) (*core.Deployment, *Checkpoint, error) {
	if ctx == nil {
		ctx = context.Background() //uavlint:allow ctxthread -- nil-ctx normalization at the API boundary
	}
	start := time.Now() //uavlint:allow timenow -- progress/ETA clock; never feeds a solver decision
	if opts.SolverIsEnum() {
		return nil, nil, fmt.Errorf("portfolio: Options.Solver %q selects the enumeration; call core.Approx", opts.Solver)
	}
	members, err := SolverMembers(opts.Solver)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case opts.MaxSubsets != 0:
		return nil, nil, fmt.Errorf("portfolio: MaxSubsets applies to the enumeration only; use SolverBudget")
	case opts.StopAfter != 0:
		return nil, nil, fmt.Errorf("portfolio: StopAfter applies to the enumeration only; use SolverBudget or a context deadline")
	case opts.Resume != nil:
		return nil, nil, fmt.Errorf("portfolio: Options.Resume carries an enumeration checkpoint; pass a portfolio checkpoint to Race instead")
	case len(opts.RequiredCells) != 0:
		return nil, nil, fmt.Errorf("portfolio: RequiredCells (gateway mode) needs the enumeration")
	}
	if opts.Shard.Count != 0 || opts.Shard.Index != 0 {
		return nil, nil, fmt.Errorf("portfolio: Shard applies to the enumeration only")
	}
	budget := opts.SolverBudget
	if budget <= 0 {
		budget = DefaultBudget
	}

	// One evaluator per member (they are single-goroutine objects); the
	// problem view is read-only and shared.
	evs := make([]*core.SubsetEvaluator, len(members))
	for i := range members {
		if evs[i], err = core.NewSubsetEvaluator(in, opts); err != nil {
			return nil, nil, err
		}
	}
	s := evs[0].S()
	p, err := newProblem(in, s)
	if err != nil {
		return nil, nil, err
	}
	solvers := make([]Solver, len(members))
	for i, name := range members {
		if solvers[i], err = newSolver(name, p, evs[i], opts.Seed, budget); err != nil {
			return nil, nil, err
		}
	}
	if resume != nil {
		if err := resume.validate(in, s, opts, opts.Solver, budget, members); err != nil {
			return nil, nil, err
		}
		for i := range solvers {
			if err := solvers[i].Restore(resume.Members[i]); err != nil {
				return nil, nil, err
			}
		}
	}

	// Members race on their own goroutines, folding per-step deltas into the
	// shared progress counters. Determinism needs no synchronization beyond
	// that: every member's trajectory depends only on its own state.
	var progEvals, progBest atomic.Int64
	progBest.Store(-1)
	type memberOut struct {
		done bool // budget exhausted (vs. stopped by ctx)
		err  error
	}
	outs := make([]memberOut, len(solvers))
	var wg sync.WaitGroup
	for i := range solvers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sv := solvers[i]
			var lastEvals int64
			if resume != nil {
				lastEvals = resume.Members[i].Evals
			}
			progEvals.Add(lastEvals)
			for {
				if ctx.Err() != nil {
					return
				}
				more, err := sv.Step()
				if err != nil {
					outs[i].err = err
					return
				}
				if e := evs[i].Evaluations(); e != lastEvals {
					progEvals.Add(e - lastEvals)
					lastEvals = e
				}
				if _, served := sv.Best(); served >= 0 {
					for {
						cur := progBest.Load()
						if int64(served) <= cur || progBest.CompareAndSwap(cur, int64(served)) {
							break
						}
					}
				}
				if !more {
					outs[i].done = true
					return
				}
			}
		}(i)
	}

	total := int64(len(members)) * budget
	snapshot := func() core.Progress {
		evals := progEvals.Load()
		best := progBest.Load()
		if best < 0 {
			best = 0
		}
		pr := core.Progress{
			Done:       evals,
			Total:      total,
			Evaluated:  evals,
			BestServed: int(best),
			Elapsed:    time.Since(start), //uavlint:allow timenow -- progress snapshot output only
			ScopeDone:  evals,
			ScopeTotal: total,
		}
		if evals > 0 && evals < total {
			pr.ETA = time.Duration(float64(pr.Elapsed) / float64(evals) * float64(total-evals))
		}
		return pr
	}
	monitorDone := make(chan struct{})
	var monitor sync.WaitGroup
	if opts.Progress != nil {
		interval := opts.ProgressInterval
		if interval <= 0 {
			interval = time.Second
		}
		monitor.Add(1)
		go func() {
			defer monitor.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					opts.Progress(snapshot())
				case <-monitorDone:
					return
				}
			}
		}()
	}

	wg.Wait()
	close(monitorDone)
	monitor.Wait()
	if opts.Progress != nil {
		opts.Progress(snapshot())
	}
	for _, out := range outs {
		if out.err != nil {
			return nil, nil, out.err
		}
	}

	stopped := false
	for _, out := range outs {
		if !out.done {
			stopped = true
		}
	}

	// Freeze member states BEFORE finalization: BuildDeployment re-runs one
	// evaluation on the winner's evaluator, which must not leak into the
	// checkpointed budget accounting.
	var cp *Checkpoint
	if stopped {
		cp = &Checkpoint{
			Algorithm:           "portfolio",
			ScenarioFingerprint: in.Fingerprint(),
			S:                   s,
			Seed:                opts.Seed,
			Solver:              opts.Solver,
			Budget:              budget,
			DisablePrune:        opts.DisablePrune,
			GroundLeftovers:     opts.GroundLeftovers,
			Members:             make([]SolverState, len(solvers)),
		}
		for i, sv := range solvers {
			st, err := sv.State()
			if err != nil {
				return nil, nil, err
			}
			cp.Members[i] = st
		}
	}

	// Deterministic reduction: most served, ties to canonical member order.
	winner := -1
	winServed := -1
	for i, sv := range solvers {
		if _, served := sv.Best(); served > winServed {
			winner, winServed = i, served
		}
	}
	var runErr error
	if stopped {
		runErr = ctx.Err()
	}
	if winner < 0 {
		if stopped {
			return nil, cp, fmt.Errorf("portfolio: stopped before any feasible deployment was found (resume with the checkpoint): %w", runErr)
		}
		return nil, nil, fmt.Errorf("portfolio: no feasible deployment within a budget of %d evaluations per member", budget)
	}
	anchors, _ := solvers[winner].Best()
	dep, err := evs[winner].BuildDeployment(anchors)
	if err != nil {
		return nil, nil, err
	}
	if len(members) == 1 {
		dep.Algorithm = members[winner]
	} else {
		dep.Algorithm = "portfolio/" + members[winner]
	}
	dep.SubsetsEvaluated = progEvals.Load()
	dep.Status = core.StatusComplete
	if stopped {
		dep.Status = core.StatusStopped
	}
	return dep, cp, runErr
}
