package portfolio

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"github.com/uav-coverage/uavnet/internal/core"
	"github.com/uav-coverage/uavnet/internal/graph"
)

// infeasibleServed is the score of an admissible subset the evaluator still
// rejects (empty greedy selection or q_j > K after relaying): worse than any
// feasible score, so such incumbents are abandoned at the first feasible move.
const infeasibleServed = -1

// search is the state every member shares: the problem view, the exact
// evaluator, the member's own RNG, the evaluation budget, and the
// incumbent/best bookkeeping. Members embed it and add their own memory.
type search struct {
	p   *problem
	ev  *core.SubsetEvaluator
	rng *rand.Rand
	src *splitmix

	budget int64 // evaluation budget (total, incl. spent)
	steps  int64 // Step calls completed

	cur        []int
	curServed  int
	best       []int
	bestServed int

	buf []int // move proposal buffer
	// moveOut/moveIn are the cells the last proposal removed and added.
	moveOut, moveIn int
}

// stepCap bounds Step calls so a member whose proposals keep failing (and
// thus spend no budget) still terminates; each successful step costs at
// least one evaluation, so the cap never cuts a healthy search short.
func (s *search) stepCap() int64 { return 2*s.budget + 128 }

func newSearch(p *problem, ev *core.SubsetEvaluator, seed int64, member int, budget int64) *search {
	rng, src := newMemberRNG(seed, member)
	return &search{
		p: p, ev: ev, rng: rng, src: src,
		budget:     budget,
		bestServed: infeasibleServed,
		curServed:  infeasibleServed,
	}
}

// remaining returns how many evaluations the member may still spend.
func (s *search) remaining() int64 { return s.budget - s.ev.Evaluations() }

// evaluate scores one admissible subset through the exact per-subset pipeline
// and folds it into the best-so-far (strict improvement only, so the first
// subset reaching a score wins ties — deterministic given the RNG stream).
func (s *search) evaluate(a []int) (int, error) {
	res, err := s.ev.Evaluate(a)
	if err != nil {
		return 0, err
	}
	served := infeasibleServed
	if res.Feasible {
		served = res.Served
	}
	if served > s.bestServed {
		s.best = append(s.best[:0], a...)
		s.bestServed = served
	}
	return served, nil
}

// errNoSubset reports that the deterministic constructors found no
// admissible anchor subset — the portfolio's counterpart of the
// enumeration's "no feasible deployment".
func errNoSubset(s int) error {
	return fmt.Errorf("portfolio: no admissible anchor subset of size %d found", s)
}

// errStateShape reports a checkpoint blob whose member-specific state does
// not fit this run's shape.
func errStateShape(member, what string, got, want int) error {
	return fmt.Errorf("portfolio: %s checkpoint state does not match this run: %s is %d, want %d", member, what, got, want)
}

// seed installs the member's starting incumbent (one evaluation). Members
// call it lazily on their first Step so a restored member never re-seeds.
func (s *search) seed() error {
	a := s.p.seedSubset(s.rng.Intn(s.p.m))
	if a == nil {
		return errNoSubset(s.p.s)
	}
	served, err := s.evaluate(a)
	if err != nil {
		return err
	}
	s.cur = a
	s.curServed = served
	return nil
}

// propose draws one neighborhood move from the incumbent; see proposeFrom.
func (s *search) propose() []int { return s.proposeFrom(s.cur) }

// proposeFrom draws one neighborhood move from an admissible base set: swap
// one anchor for a random cell of the same component, or shift one anchor to
// a random location-graph neighbor (the "re-place one UAV" move). The
// proposal is admissible by construction — the replacement must pass the hop
// bound against the untouched anchors — and nil after a bounded number of
// rejected draws (duplicate cell, hop violation). The returned slice is
// s.buf; the move's leaving and entering cells land in s.moveOut/s.moveIn
// (the tabu member's bookkeeping).
func (s *search) proposeFrom(a []int) []int {
	comp := s.p.comps[s.p.compOf[a[0]]]
	for try := 0; try < 8; try++ {
		i := s.rng.Intn(len(a))
		var c int
		if s.rng.Intn(2) == 0 {
			c = comp[s.rng.Intn(len(comp))]
		} else {
			nbs := s.p.in.LocGraph.Neighbors(a[i])
			if len(nbs) == 0 {
				continue
			}
			c = nbs[s.rng.Intn(len(nbs))]
		}
		if contains(a, c) {
			continue
		}
		ok := true
		for j, x := range a {
			if j == i {
				continue
			}
			d := s.p.in.Hop[c][x]
			if d == graph.Unreachable || d+1 > s.p.k {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.moveOut, s.moveIn = a[i], c
		s.buf = replaceAt(s.buf, a, i, c)
		return s.buf
	}
	return nil
}

// accept installs a proposal as the new incumbent.
func (s *search) accept(a []int, served int) {
	s.cur = append(s.cur[:0], a...)
	s.curServed = served
}

// Best implements Solver.
func (s *search) Best() ([]int, int) {
	if s.bestServed <= infeasibleServed {
		return nil, -1
	}
	return s.best, s.bestServed
}

// baseState freezes the shared fields; extra carries the member's own memory.
func (s *search) baseState(name string, extra any) (SolverState, error) {
	st := SolverState{
		Name:       name,
		Steps:      s.steps,
		Evals:      s.ev.Evaluations(),
		RNG:        s.src.state,
		Current:    append([]int(nil), s.cur...),
		CurServed:  s.curServed,
		Best:       append([]int(nil), s.best...),
		BestServed: s.bestServed,
	}
	if extra != nil {
		raw, err := json.Marshal(extra)
		if err != nil {
			return SolverState{}, err
		}
		st.Extra = raw
	}
	return st, nil
}

// restoreBase rewinds the shared fields and returns the member-specific blob
// for the caller to decode. The evaluator's evaluation counter is advanced to
// the frozen value so the remaining budget is exactly what the interrupted
// run had left.
func (s *search) restoreBase(name string, st SolverState) (json.RawMessage, error) {
	if st.Name != name {
		return nil, fmt.Errorf("portfolio: state is for member %q, not %q", st.Name, name)
	}
	s.steps = st.Steps
	s.src.state = st.RNG
	// An empty Current round-trips to nil: "no incumbent yet / restarting"
	// is represented as a nil cur, and solvers branch on it.
	s.cur = nil
	if len(st.Current) > 0 {
		s.cur = append([]int(nil), st.Current...)
	}
	s.curServed = st.CurServed
	s.best = nil
	if len(st.Best) > 0 {
		s.best = append([]int(nil), st.Best...)
	}
	s.bestServed = st.BestServed
	s.ev.SetEvaluations(st.Evals)
	return st.Extra, nil
}
