package portfolio

import (
	"math"

	"github.com/uav-coverage/uavnet/internal/core"
)

// annealSolver is simulated annealing with a geometric cooling schedule. The
// temperature is a pure function of the step index — T(t) = T0 · α^t with α
// chosen so T reaches tMin exactly when the evaluation budget would be spent
// at one evaluation per step — never of the wall clock (the timenow analyzer
// enforces as much package-wide). Downhill moves are accepted with
// probability exp(Δ/T), the classical escape hatch out of local optima.
type annealSolver struct {
	*search
	t0, alpha float64
}

const annealTMin = 0.05

func newAnneal(p *problem, ev *core.SubsetEvaluator, seed int64, budget int64) *annealSolver {
	s := newSearch(p, ev, seed, memberIndex("anneal"), budget)
	// T0 scales with the objective: a handful of served users should be an
	// acceptable initial downhill step. CoverageUpperBound is min(n, total
	// capacity), so 5% of it tracks the realistic score range.
	t0 := 0.05 * float64(p.in.CoverageUpperBound())
	if t0 < 1 {
		t0 = 1
	}
	alpha := math.Pow(annealTMin/t0, 1/math.Max(1, float64(budget)))
	return &annealSolver{search: s, t0: t0, alpha: alpha}
}

func (a *annealSolver) Name() string { return "anneal" }

// temperature returns T at step t: step-indexed geometric cooling.
func (a *annealSolver) temperature(t int64) float64 {
	T := a.t0 * math.Pow(a.alpha, float64(t))
	if T < annealTMin {
		T = annealTMin
	}
	return T
}

func (a *annealSolver) Step() (bool, error) {
	if a.remaining() <= 0 || a.steps >= a.stepCap() {
		return false, nil
	}
	a.steps++
	if a.cur == nil {
		return true, a.seed()
	}
	prop := a.propose()
	if prop == nil {
		return true, nil
	}
	served, err := a.evaluate(prop)
	if err != nil {
		return false, err
	}
	delta := float64(served - a.curServed)
	if delta >= 0 || a.rng.Float64() < math.Exp(delta/a.temperature(a.steps)) {
		a.accept(prop, served)
	}
	return true, nil
}

func (a *annealSolver) State() (SolverState, error) { return a.baseState("anneal", nil) }

func (a *annealSolver) Restore(st SolverState) error {
	_, err := a.restoreBase("anneal", st)
	return err
}
