package portfolio

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/uav-coverage/uavnet/internal/channel"
	"github.com/uav-coverage/uavnet/internal/core"
	"github.com/uav-coverage/uavnet/internal/geom"
	"github.com/uav-coverage/uavnet/internal/workload"
)

// testInstance builds a small random instance, every draw taken from the
// seed so a failure replays exactly: a 3-5 x 2 grid of 500 m cells, 2-5 UAVs
// with small capacities, and 10-40 users.
func testInstance(tb testing.TB, seed int64) *core.Instance {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	cols := 3 + r.Intn(3)
	grid := geom.Grid{Length: float64(cols) * 500, Width: 1000, Side: 500, Altitude: 300}
	dist := []workload.Distribution{workload.FatTailed, workload.Uniform, workload.SingleHotspot}[r.Intn(3)]
	positions, err := workload.UsersRand(r, grid, 10+r.Intn(31), dist, workload.UserOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	caps, err := workload.CapacitiesRand(r, 2+r.Intn(4), 1, 8)
	if err != nil {
		tb.Fatal(err)
	}
	sc := &core.Scenario{
		Grid:     grid,
		UAVRange: 750,
		Channel:  channel.DefaultParams(),
	}
	for _, p := range positions {
		sc.Users = append(sc.Users, core.User{Pos: p})
	}
	for i, c := range caps {
		sc.UAVs = append(sc.UAVs, core.UAV{
			Name:      fmt.Sprintf("uav-%d", i),
			Capacity:  c,
			Tx:        channel.Transmitter{PowerDBm: 30, AntennaGainDBi: 3},
			UserRange: 400,
		})
	}
	in, err := core.NewInstance(sc)
	if err != nil {
		tb.Fatal(err)
	}
	return in
}

func TestMembersCanonicalOrder(t *testing.T) {
	t.Parallel()
	want := []string{"anneal", "tabu", "grasp", "genetic"}
	got := Members()
	if len(got) != len(want) {
		t.Fatalf("Members() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("Members()[%d] = %q, want %q", i, got[i], name)
		}
		if memberIndex(name) != i {
			t.Errorf("memberIndex(%q) = %d, want %d", name, memberIndex(name), i)
		}
	}
	if memberIndex("enum") != -1 {
		t.Errorf("memberIndex(enum) = %d, want -1", memberIndex("enum"))
	}
}

func TestSolverMembers(t *testing.T) {
	t.Parallel()
	all, err := SolverMembers("portfolio")
	if err != nil || len(all) != 4 {
		t.Fatalf("SolverMembers(portfolio) = %v, %v", all, err)
	}
	one, err := SolverMembers("tabu")
	if err != nil || len(one) != 1 || one[0] != "tabu" {
		t.Fatalf("SolverMembers(tabu) = %v, %v", one, err)
	}
	if _, err := SolverMembers("bogus"); err == nil {
		t.Fatal("SolverMembers(bogus) succeeded")
	}
}

func TestSeedSubsetAndRepairAdmissible(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 20; seed++ {
		in := testInstance(t, seed)
		s := 2
		if k := in.Scenario.K(); s > k {
			s = k
		}
		p, err := newProblem(in, s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for off := 0; off < p.m; off++ {
			a := p.seedSubset(off)
			if a == nil {
				t.Fatalf("seed %d: seedSubset(%d) found nothing", seed, off)
			}
			if !p.admissible(a) {
				t.Fatalf("seed %d: seedSubset(%d) = %v not admissible", seed, off, a)
			}
		}
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 50; trial++ {
			junk := make([]int, 1+r.Intn(2*s+2))
			for i := range junk {
				junk[i] = r.Intn(p.m+2) - 1 // includes out-of-range cells
			}
			if rep := p.repair(junk, r.Intn(p.m)); rep != nil && !p.admissible(rep) {
				t.Fatalf("seed %d: repair(%v) = %v not admissible", seed, junk, rep)
			}
		}
	}
}

// TestRaceDeterminism checks the package's determinism contract: same
// scenario + same seed + same budget reproduce the deployment byte for byte,
// for every single member and for the full race.
func TestRaceDeterminism(t *testing.T) {
	t.Parallel()
	in := testInstance(t, 11)
	for _, solver := range append(Members(), "portfolio") {
		solver := solver
		t.Run(solver, func(t *testing.T) {
			t.Parallel()
			opts := core.Options{S: 2, Solver: solver, SolverBudget: 300, Seed: 7}
			var blobs [2][]byte
			for i := range blobs {
				dep, cp, err := Race(context.Background(), in, opts, nil)
				if err != nil {
					t.Fatal(err)
				}
				if cp != nil {
					t.Fatal("uninterrupted run returned a checkpoint")
				}
				if solver != "portfolio" && dep.Algorithm != solver {
					t.Fatalf("Algorithm = %q, want %q", dep.Algorithm, solver)
				}
				if solver == "portfolio" && !strings.HasPrefix(dep.Algorithm, "portfolio/") {
					t.Fatalf("Algorithm = %q, want portfolio/<member>", dep.Algorithm)
				}
				if blobs[i], err = json.Marshal(dep); err != nil {
					t.Fatal(err)
				}
			}
			if string(blobs[0]) != string(blobs[1]) {
				t.Fatalf("same-seed runs differ:\n%s\nvs\n%s", blobs[0], blobs[1])
			}
		})
	}
}

// TestRaceSingleMemberStreamStable checks that a member draws the same RNG
// stream alone as inside the full race: the anneal-only deployment equals a
// portfolio deployment whenever anneal wins the race — more fundamentally,
// the member seed is keyed on the canonical index, not the racing lineup.
func TestRaceMemberSeedIndependentOfLineup(t *testing.T) {
	t.Parallel()
	in := testInstance(t, 12)
	dep, _, err := Race(context.Background(), in, core.Options{S: 2, Solver: "portfolio", SolverBudget: 200, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	winner := strings.TrimPrefix(dep.Algorithm, "portfolio/")
	solo, _, err := Race(context.Background(), in, core.Options{S: 2, Solver: winner, SolverBudget: 200, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Served != dep.Served {
		t.Fatalf("%s alone served %d, inside the race %d", winner, solo.Served, dep.Served)
	}
}

// TestRaceResumeByteIdentity interrupts a race mid-run, resumes it from the
// checkpoint, and requires the resumed deployment to be byte-identical to an
// uninterrupted run with the same options.
func TestRaceResumeByteIdentity(t *testing.T) {
	t.Parallel()
	in := testInstance(t, 13)
	opts := core.Options{S: 2, Solver: "portfolio", SolverBudget: 4000, Seed: 5}

	full, cp, err := Race(context.Background(), in, opts, nil)
	if err != nil || cp != nil {
		t.Fatalf("uninterrupted run: err=%v cp=%v", err, cp)
	}
	wantJSON, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt once a few evaluations are in: the progress monitor drives
	// the cancellation, so the cut lands at an arbitrary step boundary.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iopts := opts
	iopts.ProgressInterval = time.Millisecond
	var cancelled atomic.Bool
	iopts.Progress = func(p core.Progress) {
		if p.Evaluated > 200 && !cancelled.Swap(true) {
			cancel()
		}
	}
	stopDep, stopCp, err := Race(ctx, in, iopts, nil)
	if stopCp == nil {
		t.Skipf("run finished before the interrupt landed (err=%v); nothing to resume", err)
	}
	if err == nil {
		t.Fatal("stopped run returned no error")
	}
	if stopDep != nil && stopDep.Status != core.StatusStopped {
		t.Fatalf("stopped run has status %v", stopDep.Status)
	}

	// A checkpoint must round-trip through its JSON form unharmed.
	blob, err := stopCp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}

	resumed, cp2, err := Race(context.Background(), in, opts, restored)
	if err != nil {
		t.Fatal(err)
	}
	if cp2 != nil {
		t.Fatal("resumed run returned a checkpoint despite completing")
	}
	gotJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("resumed deployment differs from uninterrupted:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

func TestRaceRejectsEnumOptions(t *testing.T) {
	t.Parallel()
	in := testInstance(t, 14)
	base := core.Options{S: 2, Solver: "anneal", SolverBudget: 50}
	cases := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"enum solver", func(o *core.Options) { o.Solver = "enum" }},
		{"unknown solver", func(o *core.Options) { o.Solver = "hillclimb" }},
		{"max subsets", func(o *core.Options) { o.MaxSubsets = 10 }},
		{"stop after", func(o *core.Options) { o.StopAfter = 10 }},
		{"shard", func(o *core.Options) { o.Shard.Count = 2 }},
		{"required cells", func(o *core.Options) { o.RequiredCells = []int{0} }},
	}
	for _, tc := range cases {
		opts := base
		tc.mutate(&opts)
		if _, _, err := Race(context.Background(), in, opts, nil); err == nil {
			t.Errorf("%s: Race accepted the option", tc.name)
		}
	}
}

// TestCheckpointValidateRejectsMismatch interrupts a run and then tries to
// resume it under each differing option, expecting a refusal.
func TestCheckpointValidateRejectsMismatch(t *testing.T) {
	t.Parallel()
	in := testInstance(t, 15)
	opts := core.Options{S: 2, Solver: "portfolio", SolverBudget: 100000, Seed: 9}
	ctx, cancel := context.WithCancel(context.Background())
	iopts := opts
	iopts.ProgressInterval = time.Millisecond
	var cancelled atomic.Bool
	iopts.Progress = func(p core.Progress) {
		if p.Evaluated > 50 && !cancelled.Swap(true) {
			cancel()
		}
	}
	_, cp, err := Race(ctx, in, iopts, nil)
	cancel()
	if cp == nil {
		t.Fatalf("no checkpoint from interrupted run (err=%v)", err)
	}

	cases := []struct {
		name   string
		mutate func(o *core.Options, c *Checkpoint)
	}{
		{"seed", func(o *core.Options, c *Checkpoint) { o.Seed++ }},
		{"budget", func(o *core.Options, c *Checkpoint) { o.SolverBudget++ }},
		{"solver", func(o *core.Options, c *Checkpoint) { o.Solver = "anneal" }},
		{"algorithm", func(o *core.Options, c *Checkpoint) { c.Algorithm = "approAlg" }},
		{"fingerprint", func(o *core.Options, c *Checkpoint) { c.ScenarioFingerprint++ }},
		{"member order", func(o *core.Options, c *Checkpoint) {
			c.Members[0].Name, c.Members[1].Name = c.Members[1].Name, c.Members[0].Name
		}},
		{"overspent member", func(o *core.Options, c *Checkpoint) { c.Members[0].Evals = c.Budget + 1 }},
	}
	for _, tc := range cases {
		mutated := *cp
		mutated.Members = append([]SolverState(nil), cp.Members...)
		o := opts
		tc.mutate(&o, &mutated)
		if _, _, err := Race(context.Background(), in, o, &mutated); err == nil {
			t.Errorf("%s: resume accepted a mismatched checkpoint", tc.name)
		}
	}
}

func TestUnmarshalCheckpointRejectsWrongAlgorithm(t *testing.T) {
	t.Parallel()
	if _, err := UnmarshalCheckpoint([]byte(`{"algorithm":"approAlg"}`)); err == nil {
		t.Fatal("UnmarshalCheckpoint accepted an enumeration checkpoint")
	}
	if _, err := UnmarshalCheckpoint([]byte(`not json`)); err == nil {
		t.Fatal("UnmarshalCheckpoint accepted junk")
	}
}
