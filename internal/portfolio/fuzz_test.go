package portfolio

import (
	"testing"

	"github.com/uav-coverage/uavnet/internal/core"
)

// FuzzNeighborMove asserts the neighborhood's core invariant: starting from
// an admissible anchor subset, any chain of proposed moves stays inside the
// admissible region (sorted distinct cells, one location-graph component,
// pairwise maxHop+1 <= K), and the crossover repair operator never returns
// an inadmissible set — the "moves never leave the matroid-feasible region"
// property the evaluator's q_j <= K check relies on.
func FuzzNeighborMove(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint8(32))
	}
	f.Fuzz(func(t *testing.T, seed int64, nMoves uint8) {
		in := testInstance(t, 1+(seed%64+64)%64)
		s := 2
		if k := in.Scenario.K(); s > k {
			s = k
		}
		p, err := newProblem(in, s)
		if err != nil {
			t.Skip("no admissible component in this instance")
		}
		ev, err := core.NewSubsetEvaluator(in, core.Options{S: s})
		if err != nil {
			t.Fatal(err)
		}
		sr := newSearch(p, ev, seed, 0, int64(nMoves)+1)

		a := p.seedSubset(int((uint64(seed) % uint64(p.m))))
		if a == nil {
			t.Skip("no admissible seed subset")
		}
		if !p.admissible(a) {
			t.Fatalf("seed subset %v not admissible", a)
		}
		cur := append([]int(nil), a...)
		for i := 0; i < int(nMoves); i++ {
			mv := sr.proposeFrom(cur)
			if mv == nil {
				continue
			}
			if !p.admissible(mv) {
				t.Fatalf("move %d: %v -> %v left the admissible region", i, cur, mv)
			}
			if mv[0] < 0 || mv[len(mv)-1] >= p.m {
				t.Fatalf("move %d: %v out of cell range", i, mv)
			}
			cur = append(cur[:0], mv...)
		}

		// Crossover repair: the union of two admissible sets — and arbitrary
		// junk, including out-of-range cells — repairs to admissible or nil.
		b := p.seedSubset(int((uint64(seed+1) % uint64(p.m))))
		union := append(append([]int(nil), cur...), b...)
		if rep := p.repair(union, int(uint64(nMoves))%p.m); rep != nil && !p.admissible(rep) {
			t.Fatalf("repair(%v) = %v not admissible", union, rep)
		}
		junk := []int{-1, p.m, int(uint64(seed) % uint64(p.m)), 0, 0}
		if rep := p.repair(junk, 0); rep != nil && !p.admissible(rep) {
			t.Fatalf("repair(%v) = %v not admissible", junk, rep)
		}
	})
}
