package portfolio

import (
	"encoding/json"

	"github.com/uav-coverage/uavnet/internal/core"
)

// tabuSolver is tabu search over the anchor-swap neighborhood: each step
// samples a small candidate set of moves, evaluates them exactly, and commits
// the best candidate whose entering cell is not tabu — even when it worsens
// the incumbent, which is how tabu walks out of local optima. A cell that
// leaves the solution becomes tabu (may not re-enter) for a fixed tenure of
// steps; the aspiration rule overrides the list whenever a tabu candidate
// beats the best subset ever seen.
type tabuSolver struct {
	*search
	// ring is the fixed-tenure tabu list of recently removed cells; head is
	// the slot the next removal overwrites. The tenure is the ring length.
	ring []int
	head int
}

// tabuWidth is how many candidate moves each step samples and evaluates.
const tabuWidth = 4

func newTabu(p *problem, ev *core.SubsetEvaluator, seed int64, budget int64) *tabuSolver {
	s := newSearch(p, ev, seed, memberIndex("tabu"), budget)
	tenure := p.s + 4
	ring := make([]int, tenure)
	for i := range ring {
		ring[i] = -1
	}
	return &tabuSolver{search: s, ring: ring}
}

func (t *tabuSolver) Name() string { return "tabu" }

func (t *tabuSolver) isTabu(c int) bool {
	for _, x := range t.ring {
		if x == c {
			return true
		}
	}
	return false
}

func (t *tabuSolver) Step() (bool, error) {
	if t.remaining() <= 0 || t.steps >= t.stepCap() {
		return false, nil
	}
	t.steps++
	if t.cur == nil {
		return true, t.seed()
	}
	width := tabuWidth
	if r := t.remaining(); r < int64(width) {
		width = int(r)
	}
	// Sample and evaluate the candidate set, keeping the best admissible
	// candidate under the tabu/aspiration rule. bestIn/bestOut record the
	// winning move's entering and leaving cells for the tenure update.
	bestServed := infeasibleServed - 1
	var bestSet []int
	bestIn, bestOut := -1, -1
	for c := 0; c < width; c++ {
		prop := t.propose()
		if prop == nil {
			continue
		}
		in, out := t.moveIn, t.moveOut
		served, err := t.evaluate(prop)
		if err != nil {
			return false, err
		}
		if t.isTabu(in) && served <= t.bestServed {
			continue // tabu and not aspirating
		}
		if served > bestServed {
			bestServed = served
			bestSet = append(bestSet[:0], prop...)
			bestIn, bestOut = in, out
		}
	}
	if bestSet == nil {
		return true, nil // every candidate was tabu; the ring ages via future removals
	}
	_ = bestIn
	t.accept(bestSet, bestServed)
	t.ring[t.head] = bestOut
	t.head = (t.head + 1) % len(t.ring)
	return true, nil
}

// tabuExtra is the member-specific checkpoint blob.
type tabuExtra struct {
	Ring []int `json:"ring"`
	Head int   `json:"head"`
}

func (t *tabuSolver) State() (SolverState, error) {
	return t.baseState("tabu", tabuExtra{Ring: append([]int(nil), t.ring...), Head: t.head})
}

func (t *tabuSolver) Restore(st SolverState) error {
	raw, err := t.restoreBase("tabu", st)
	if err != nil {
		return err
	}
	var ex tabuExtra
	if err := json.Unmarshal(raw, &ex); err != nil {
		return err
	}
	if len(ex.Ring) != len(t.ring) {
		// The tenure is derived from s, so a size mismatch means the state
		// belongs to a different run shape.
		return errStateShape("tabu", "tabu-ring length", len(ex.Ring), len(t.ring))
	}
	copy(t.ring, ex.Ring)
	t.head = ex.Head
	return nil
}
