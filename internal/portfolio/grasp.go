package portfolio

import (
	"encoding/json"
	"sort"

	"github.com/uav-coverage/uavnet/internal/core"
	"github.com/uav-coverage/uavnet/internal/match"
)

// graspSolver is GRASP: greedy randomized construction followed by a local
// search, restarted whenever the search stalls. Construction grows an anchor
// set cell by cell, scoring candidates by the marginal demand coverage their
// eligibility mask adds over the set's accumulated union (pure bitset
// popcounts — no evaluator calls) and drawing uniformly from the restricted
// candidate list of near-best cells; only the finished construction costs one
// exact evaluation. The local search is first-improvement hill climbing over
// the shared move neighborhood; after graspStall consecutive non-improving
// moves the incumbent is declared a local optimum and the next step restarts.
type graspSolver struct {
	*search
	stall int // consecutive non-improving evaluations on the incumbent
	// Construction scratch (rebuilt within one step; not checkpointed).
	union  match.Bitset
	cand   []int
	scores []int
}

const (
	// graspStall is the non-improvement streak that triggers a restart.
	graspStall = 30
	// graspRCL is the restricted-candidate-list fraction: candidates scoring
	// within this fraction of the best marginal coverage are drawn from
	// uniformly.
	graspRCL = 0.8
)

func newGrasp(p *problem, ev *core.SubsetEvaluator, seed int64, budget int64) *graspSolver {
	s := newSearch(p, ev, seed, memberIndex("grasp"), budget)
	return &graspSolver{search: s, union: match.NewBitset(p.in.NumNodes())}
}

func (g *graspSolver) Name() string { return "grasp" }

// construct builds one greedy-randomized admissible subset. The coverage
// heuristic uses the eligibility mask of the highest-capacity UAV's class —
// the first greedy round's view of the world — which is a cheap, sound proxy
// for the exact score.
func (g *graspSolver) construct() []int {
	p := g.p
	comp := p.comps[g.rng.Intn(len(p.comps))]
	class := p.in.ClassOf[p.in.ByCapacity[0]]
	for i := range g.union {
		g.union[i] = 0
	}
	a := make([]int, 0, p.s)
	for len(a) < p.s {
		// Score every hop-feasible unused cell by marginal coverage.
		g.cand = g.cand[:0]
		g.scores = g.scores[:0]
		best := -1
		for _, c := range comp {
			if contains(a, c) || !p.hopOK(c, a) {
				continue
			}
			sc := match.AndNotCount(p.in.EligMask[class][c], g.union)
			g.cand = append(g.cand, c)
			g.scores = append(g.scores, sc)
			if sc > best {
				best = sc
			}
		}
		if len(g.cand) == 0 {
			// Dead end (hop bound exhausted the component): fall back to the
			// deterministic seed to stay admissible.
			return p.seedSubset(g.rng.Intn(p.m))
		}
		// Restricted candidate list: all cells within graspRCL of the best
		// marginal score.
		cut := int(graspRCL * float64(best))
		w := 0
		for i, c := range g.cand {
			if g.scores[i] >= cut {
				g.cand[w] = c
				w++
			}
		}
		chosen := g.cand[g.rng.Intn(w)]
		a = append(a, chosen)
		sort.Ints(a)
		g.union.Or(p.in.EligMask[class][chosen])
	}
	return a
}

func (g *graspSolver) Step() (bool, error) {
	if g.remaining() <= 0 || g.steps >= g.stepCap() {
		return false, nil
	}
	g.steps++
	if g.cur == nil {
		a := g.construct()
		if a == nil {
			return false, errNoSubset(g.p.s)
		}
		served, err := g.evaluate(a)
		if err != nil {
			return false, err
		}
		g.cur = append(g.cur[:0], a...)
		g.curServed = served
		g.stall = 0
		return true, nil
	}
	prop := g.propose()
	if prop == nil {
		g.stall++
	} else {
		served, err := g.evaluate(prop)
		if err != nil {
			return false, err
		}
		if served > g.curServed {
			g.accept(prop, served)
			g.stall = 0
		} else {
			g.stall++
		}
	}
	if g.stall >= graspStall {
		g.cur = nil // local optimum: restart on the next step
		g.curServed = infeasibleServed
		g.stall = 0
	}
	return true, nil
}

// graspExtra is the member-specific checkpoint blob. The union bitset and
// candidate scratch live only within one construction step, so the stall
// counter is the whole member-specific state.
type graspExtra struct {
	Stall int `json:"stall"`
}

func (g *graspSolver) State() (SolverState, error) {
	return g.baseState("grasp", graspExtra{Stall: g.stall})
}

func (g *graspSolver) Restore(st SolverState) error {
	raw, err := g.restoreBase("grasp", st)
	if err != nil {
		return err
	}
	var ex graspExtra
	if err := json.Unmarshal(raw, &ex); err != nil {
		return err
	}
	g.stall = ex.Stall
	return nil
}
