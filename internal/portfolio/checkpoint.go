package portfolio

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/uav-coverage/uavnet/internal/core"
)

// SolverState freezes one portfolio member. Together with the run options it
// is the member's complete state: the search trajectory is a pure function of
// (seed, step), so restoring the RNG word, the incumbent/best pair, and the
// member-specific Extra blob makes the resumed member continue exactly the
// interrupted trajectory — a cancelled-then-resumed race is byte-identical to
// an uninterrupted one.
type SolverState struct {
	// Name is the member's canonical name.
	Name string `json:"name"`
	// Steps and Evals are the member's step and evaluation counters.
	Steps int64 `json:"steps"`
	Evals int64 `json:"evals"`
	// RNG is the member's splitmix64 state word.
	RNG uint64 `json:"rng"`
	// Current and CurServed are the incumbent subset and its score; an
	// absent Current means the member had not seeded yet (or was between
	// GRASP restarts).
	Current   []int `json:"current,omitempty"`
	CurServed int   `json:"cur_served"`
	// Best and BestServed are the best feasible subset seen and its score;
	// BestServed is -1 while none has been found.
	Best       []int `json:"best,omitempty"`
	BestServed int   `json:"best_served"`
	// Extra is the member-specific memory: the tabu ring, the genetic
	// population, the GRASP stall counter. Absent for memoryless members.
	Extra json.RawMessage `json:"extra,omitempty"`
}

// Checkpoint freezes a stopped portfolio race so a later run can resume it
// and finish with a deployment byte-identical to an uninterrupted run (the
// portfolio counterpart of core.Checkpoint; see SolverState for why that
// works). It refuses to resume under any differing option, mirroring the
// enumeration checkpoint's field-by-field validation.
type Checkpoint struct {
	// Algorithm is always "portfolio"; resuming rejects anything else.
	Algorithm string `json:"algorithm"`
	// ScenarioFingerprint guards against resuming on a different scenario
	// (Instance.Fingerprint, so aggregated instances bind their demand grid).
	ScenarioFingerprint uint64 `json:"scenario_fingerprint"`
	// S is the effective anchor-subset size.
	S int `json:"s"`
	// Seed, Solver, Budget, DisablePrune and GroundLeftovers echo the
	// options that shape every member's trajectory; any difference would
	// silently change the result, so resuming requires an exact match.
	Seed            int64  `json:"seed"`
	Solver          string `json:"solver"`
	Budget          int64  `json:"budget"`
	DisablePrune    bool   `json:"disable_prune,omitempty"`
	GroundLeftovers bool   `json:"ground_leftovers,omitempty"`
	// Members holds one frozen state per racing member, in canonical order.
	Members []SolverState `json:"members"`
}

// Marshal serializes the checkpoint as indented JSON.
func (c *Checkpoint) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// UnmarshalCheckpoint parses a checkpoint previously produced by Marshal.
// Unknown fields are rejected, mirroring core.UnmarshalCheckpoint: a field
// this version cannot interpret would otherwise be dropped silently, and the
// resumed race would diverge from the frozen one with no diagnostic. (The
// member-specific Extra blob is exempt by construction — it round-trips as
// raw JSON and each member validates its own.)
func UnmarshalCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("portfolio: bad checkpoint: %w", err)
	}
	if c.Algorithm != "portfolio" {
		return nil, fmt.Errorf("portfolio: checkpoint is for algorithm %q, not portfolio", c.Algorithm)
	}
	return &c, nil
}

// validate rejects a checkpoint that was not produced by an identical run.
func (c *Checkpoint) validate(in *core.Instance, s int, opts core.Options, solver string, budget int64, members []string) error {
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("portfolio: checkpoint does not match this run: %s is %v, checkpoint has %v", field, got, want)
	}
	if c.Algorithm != "portfolio" {
		return fmt.Errorf("portfolio: checkpoint is for algorithm %q, not portfolio", c.Algorithm)
	}
	if fp := in.Fingerprint(); fp != c.ScenarioFingerprint {
		return mismatch("scenario fingerprint", fmt.Sprintf("%016x", fp), fmt.Sprintf("%016x", c.ScenarioFingerprint))
	}
	if s != c.S {
		return mismatch("s", s, c.S)
	}
	if opts.Seed != c.Seed {
		return mismatch("seed", opts.Seed, c.Seed)
	}
	if solver != c.Solver {
		return mismatch("solver", solver, c.Solver)
	}
	if budget != c.Budget {
		return mismatch("solver budget", budget, c.Budget)
	}
	if opts.DisablePrune != c.DisablePrune {
		return mismatch("disable-prune", opts.DisablePrune, c.DisablePrune)
	}
	if opts.GroundLeftovers != c.GroundLeftovers {
		return mismatch("ground-leftovers", opts.GroundLeftovers, c.GroundLeftovers)
	}
	if len(c.Members) != len(members) {
		return mismatch("member count", len(members), len(c.Members))
	}
	for i, name := range members {
		if c.Members[i].Name != name {
			return mismatch("member", name, c.Members[i].Name)
		}
		if c.Members[i].Evals > budget {
			return fmt.Errorf("portfolio: checkpoint member %q spent %d evaluations, over the %d budget", name, c.Members[i].Evals, budget)
		}
	}
	return nil
}
