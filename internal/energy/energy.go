// Package energy models UAV power consumption and mission endurance. The
// paper motivates heterogeneous fleets through different payloads and
// battery capacities (DJI Matrice 600 vs 300, Section I); this package
// quantifies that: hover power from rotor-disk actuator theory, payload
// sensitivity, base-station electronics drain, and the resulting hover
// endurance that bounds how long a deployment can stay up before rotation.
package energy

import (
	"fmt"
	"math"
)

// Profile describes one UAV's power-relevant parameters.
type Profile struct {
	// MassKg is the airframe mass including battery, excluding payload.
	MassKg float64
	// PayloadKg is the mounted base-station payload.
	PayloadKg float64
	// RotorRadiusM is the radius of one rotor disk.
	RotorRadiusM float64
	// Rotors is the number of rotors (4, 6, 8).
	Rotors int
	// BatteryWh is the usable battery energy in watt-hours.
	BatteryWh float64
	// AvionicsW is the constant electronics draw (flight controller,
	// radios) in watts.
	AvionicsW float64
	// BaseStationW is the mounted base station's draw in watts (SkyRAN +
	// SkyCore electronics).
	BaseStationW float64
	// FigureOfMerit is the rotor efficiency in (0, 1]; 0.6-0.75 is typical.
	FigureOfMerit float64
}

// Validate reports whether the profile is physically meaningful.
func (p Profile) Validate() error {
	switch {
	case p.MassKg <= 0:
		return fmt.Errorf("energy: mass %g kg must be positive", p.MassKg)
	case p.PayloadKg < 0:
		return fmt.Errorf("energy: payload %g kg must be non-negative", p.PayloadKg)
	case p.RotorRadiusM <= 0:
		return fmt.Errorf("energy: rotor radius %g m must be positive", p.RotorRadiusM)
	case p.Rotors < 1:
		return fmt.Errorf("energy: rotor count %d must be positive", p.Rotors)
	case p.BatteryWh <= 0:
		return fmt.Errorf("energy: battery %g Wh must be positive", p.BatteryWh)
	case p.AvionicsW < 0 || p.BaseStationW < 0:
		return fmt.Errorf("energy: electronics draws must be non-negative")
	case p.FigureOfMerit <= 0 || p.FigureOfMerit > 1:
		return fmt.Errorf("energy: figure of merit %g outside (0, 1]", p.FigureOfMerit)
	}
	return nil
}

// Physical constants.
const (
	gravity    = 9.80665 // m/s^2
	airDensity = 1.225   // kg/m^3 at sea level, 15 C
)

// HoverPowerW returns the total electrical power draw while hovering:
// induced rotor power from momentum theory,
//
//	P_ideal = T^(3/2) / sqrt(2 * rho * A_total),
//
// divided by the figure of merit, plus the constant electronics draws.
func (p Profile) HoverPowerW() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	thrust := (p.MassKg + p.PayloadKg) * gravity
	diskArea := float64(p.Rotors) * math.Pi * p.RotorRadiusM * p.RotorRadiusM
	ideal := math.Pow(thrust, 1.5) / math.Sqrt(2*airDensity*diskArea)
	return ideal/p.FigureOfMerit + p.AvionicsW + p.BaseStationW, nil
}

// HoverEnduranceMin returns the hover endurance in minutes.
func (p Profile) HoverEnduranceMin() (float64, error) {
	power, err := p.HoverPowerW()
	if err != nil {
		return 0, err
	}
	return p.BatteryWh / power * 60, nil
}

// Reference profiles for the two airframes the paper names. Battery and
// payload figures follow the public spec sheets: the M600 lifts a heavier,
// more capable base station and carries more battery; the M300 is lighter
// in both.
var (
	// MatriceM600 approximates a DJI Matrice 600 Pro/RTK with a full
	// LTE base-station payload.
	MatriceM600 = Profile{
		MassKg:        9.5,
		PayloadKg:     5.0,
		RotorRadiusM:  0.265,
		Rotors:        6,
		BatteryWh:     600,
		AvionicsW:     40,
		BaseStationW:  60,
		FigureOfMerit: 0.65,
	}
	// MatriceM300 approximates a DJI Matrice 300 RTK with a light
	// base-station payload.
	MatriceM300 = Profile{
		MassKg:        6.3,
		PayloadKg:     2.5,
		RotorRadiusM:  0.2665,
		Rotors:        4,
		BatteryWh:     530,
		AvionicsW:     25,
		BaseStationW:  35,
		FigureOfMerit: 0.65,
	}
)

// MissionEndurance describes how long a deployed network lasts.
type MissionEndurance struct {
	// PerUAVMin is each UAV's hover endurance in minutes.
	PerUAVMin []float64
	// NetworkMin is the time until the FIRST UAV must leave: the network's
	// guaranteed intact duration.
	NetworkMin float64
	// WeakestUAV is the index of the endurance-limiting UAV.
	WeakestUAV int
}

// NetworkEndurance computes mission endurance for a fleet of profiles.
// An empty fleet is an error.
func NetworkEndurance(fleet []Profile) (MissionEndurance, error) {
	if len(fleet) == 0 {
		return MissionEndurance{}, fmt.Errorf("energy: empty fleet")
	}
	out := MissionEndurance{
		PerUAVMin:  make([]float64, len(fleet)),
		NetworkMin: math.Inf(1),
		WeakestUAV: -1,
	}
	for i, p := range fleet {
		e, err := p.HoverEnduranceMin()
		if err != nil {
			return MissionEndurance{}, fmt.Errorf("energy: UAV %d: %w", i, err)
		}
		out.PerUAVMin[i] = e
		if e < out.NetworkMin {
			out.NetworkMin = e
			out.WeakestUAV = i
		}
	}
	return out, nil
}

// RotationPlan computes a relief schedule: given the network endurance and
// a swap overhead (fly-out + fly-in + handover) in minutes, it returns how
// many relief sorties per UAV slot are needed to sustain a mission of the
// given duration. A non-positive usable window (overhead >= endurance) is
// an error.
func RotationPlan(enduranceMin, swapOverheadMin, missionMin float64) (int, error) {
	if enduranceMin <= 0 || missionMin < 0 || swapOverheadMin < 0 {
		return 0, fmt.Errorf("energy: invalid rotation inputs (endurance %g, overhead %g, mission %g)",
			enduranceMin, swapOverheadMin, missionMin)
	}
	usable := enduranceMin - swapOverheadMin
	if usable <= 0 {
		return 0, fmt.Errorf("energy: swap overhead %g min leaves no usable window of %g min endurance",
			swapOverheadMin, enduranceMin)
	}
	if missionMin <= enduranceMin {
		return 0, nil // the first battery covers the whole mission
	}
	return int(math.Ceil((missionMin - enduranceMin) / usable)), nil
}
