package energy

import (
	"math"
	"testing"
)

func TestProfileValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Profile)
		wantErr bool
	}{
		{"m600-ok", func(*Profile) {}, false},
		{"zero-mass", func(p *Profile) { p.MassKg = 0 }, true},
		{"negative-payload", func(p *Profile) { p.PayloadKg = -1 }, true},
		{"zero-rotor", func(p *Profile) { p.RotorRadiusM = 0 }, true},
		{"zero-rotors", func(p *Profile) { p.Rotors = 0 }, true},
		{"zero-battery", func(p *Profile) { p.BatteryWh = 0 }, true},
		{"negative-avionics", func(p *Profile) { p.AvionicsW = -1 }, true},
		{"bad-fom", func(p *Profile) { p.FigureOfMerit = 1.2 }, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := MatriceM600
			tc.mutate(&p)
			if err := p.Validate(); (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestHoverPowerPlausibleRange(t *testing.T) {
	// Public figures put a loaded M600's hover draw in the 1.5-3.5 kW band.
	p, err := MatriceM600.HoverPowerW()
	if err != nil {
		t.Fatal(err)
	}
	if p < 1500 || p > 3500 {
		t.Errorf("M600 hover power %g W outside plausible 1.5-3.5 kW", p)
	}
	q, err := MatriceM300.HoverPowerW()
	if err != nil {
		t.Fatal(err)
	}
	if q >= p {
		t.Errorf("M300 power %g W should be below M600 %g W", q, p)
	}
}

func TestHoverEndurancePlausible(t *testing.T) {
	// Loaded endurance of these airframes is roughly 10-35 minutes.
	for name, prof := range map[string]Profile{"M600": MatriceM600, "M300": MatriceM300} {
		e, err := prof.HoverEnduranceMin()
		if err != nil {
			t.Fatal(err)
		}
		if e < 8 || e > 40 {
			t.Errorf("%s endurance %g min outside plausible 8-40", name, e)
		}
	}
}

func TestPayloadReducesEndurance(t *testing.T) {
	light := MatriceM300
	light.PayloadKg = 0.5
	heavy := MatriceM300
	heavy.PayloadKg = 2.7 // the spec-sheet maximum
	le, err := light.HoverEnduranceMin()
	if err != nil {
		t.Fatal(err)
	}
	he, err := heavy.HoverEnduranceMin()
	if err != nil {
		t.Fatal(err)
	}
	if he >= le {
		t.Errorf("heavier payload should cut endurance: %g >= %g", he, le)
	}
}

func TestHoverPowerScalesWithThrust(t *testing.T) {
	// Momentum theory: P ~ T^1.5. Doubling all-up mass should raise power
	// by about 2^1.5 = 2.83x (electronics excluded).
	base := MatriceM300
	base.AvionicsW = 0
	base.BaseStationW = 0
	double := base
	double.MassKg *= 2
	double.PayloadKg *= 2
	p1, err := base.HoverPowerW()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := double.HoverPowerW()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := p2 / p1; math.Abs(ratio-2.828) > 0.01 {
		t.Errorf("power ratio %g, want 2^1.5", ratio)
	}
}

func TestNetworkEndurance(t *testing.T) {
	fleet := []Profile{MatriceM600, MatriceM300, MatriceM600}
	me, err := NetworkEndurance(fleet)
	if err != nil {
		t.Fatal(err)
	}
	if len(me.PerUAVMin) != 3 {
		t.Fatalf("per-UAV list %v", me.PerUAVMin)
	}
	min := math.Inf(1)
	for _, e := range me.PerUAVMin {
		if e < min {
			min = e
		}
	}
	if me.NetworkMin != min {
		t.Errorf("NetworkMin = %g, want %g", me.NetworkMin, min)
	}
	if me.WeakestUAV < 0 || me.PerUAVMin[me.WeakestUAV] != min {
		t.Errorf("WeakestUAV = %d", me.WeakestUAV)
	}
}

func TestNetworkEnduranceErrors(t *testing.T) {
	if _, err := NetworkEndurance(nil); err == nil {
		t.Error("empty fleet should fail")
	}
	bad := MatriceM300
	bad.BatteryWh = 0
	if _, err := NetworkEndurance([]Profile{bad}); err == nil {
		t.Error("invalid profile should fail")
	}
}

func TestRotationPlan(t *testing.T) {
	tests := []struct {
		name                         string
		endurance, overhead, mission float64
		want                         int
		wantErr                      bool
	}{
		{"covered-by-first-battery", 30, 5, 25, 0, false},
		{"exactly-first-battery", 30, 5, 30, 0, false},
		{"one-relief", 30, 5, 50, 1, false},
		{"long-mission", 30, 5, 300, 11, false}, // (300-30)/25 = 10.8 -> 11
		{"zero-mission", 30, 5, 0, 0, false},
		{"overhead-eats-endurance", 10, 10, 60, 0, true},
		{"bad-endurance", 0, 5, 60, 0, true},
		{"negative-mission", 30, 5, -1, 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := RotationPlan(tc.endurance, tc.overhead, tc.mission)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if err == nil && got != tc.want {
				t.Errorf("RotationPlan = %d, want %d", got, tc.want)
			}
		})
	}
}
