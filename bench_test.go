// Benchmarks regenerating the paper's evaluation (Section IV) at a reduced
// scale, one benchmark family per figure, plus micro-benchmarks for the
// substrates. The full-fidelity runs (3x3 km, n = 3000, K = 20) are driven
// by cmd/uavbench; these benches keep iterations small enough for
// `go test -bench=. -benchmem` to finish in minutes on a laptop.
//
//	BenchmarkFig4/...  served users vs number of UAVs K
//	BenchmarkFig5/...  served users vs number of users n
//	BenchmarkFig6/...  served users and running time vs parameter s
//	                   (time/op IS Fig. 6(b)'s metric)
package uavnet_test

import (
	"context"
	"fmt"
	"testing"

	uavnet "github.com/uav-coverage/uavnet"
	"github.com/uav-coverage/uavnet/internal/eval"
)

// benchParams is the reduced-scale Section IV-A setting shared by the
// figure benchmarks: same area shape and fleet heterogeneity, fewer users
// and a coarser sweep so one point fits in a benchmark iteration.
func benchParams() eval.Params {
	return eval.Params{
		AreaSide: 3000,
		CellSide: 500,
		N:        600,
		K:        10,
		CMin:     20,
		CMax:     120,
		Seed:     1,
	}
}

func benchInstance(b *testing.B, p eval.Params) *uavnet.Instance {
	b.Helper()
	in, err := eval.BuildInstance(p)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkFig4 regenerates one K-point of Fig. 4 per sub-benchmark:
// approAlg on the paper's scenario shape with K swept.
func BenchmarkFig4(b *testing.B) {
	for _, k := range []int{2, 6, 10} {
		b.Run(fmt.Sprintf("approAlg/K=%d", k), func(b *testing.B) {
			p := benchParams()
			p.K = k
			in := benchInstance(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dep, err := uavnet.DeployInstance(in, uavnet.Options{S: 2, Workers: 2})
				if err != nil {
					b.Fatal(err)
				}
				if dep.Served == 0 {
					b.Fatal("served nobody")
				}
			}
		})
	}
	// The baselines complete the figure's five curves.
	for _, name := range uavnet.AlgorithmNames()[1:] {
		b.Run(fmt.Sprintf("%s/K=10", name), func(b *testing.B) {
			in := benchInstance(b, benchParams())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := uavnet.DeployWith(name, in, uavnet.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5 regenerates one n-point of Fig. 5 per sub-benchmark.
func BenchmarkFig5(b *testing.B) {
	for _, n := range []int{200, 400, 600} {
		b.Run(fmt.Sprintf("approAlg/n=%d", n), func(b *testing.B) {
			p := benchParams()
			p.N = n
			in := benchInstance(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := uavnet.DeployInstance(in, uavnet.Options{S: 2, Workers: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6 regenerates Fig. 6: the reported time/op across the s
// sub-benchmarks is exactly Fig. 6(b)'s running-time curve, and each run's
// served count traces Fig. 6(a).
func BenchmarkFig6(b *testing.B) {
	for _, s := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("approAlg/s=%d", s), func(b *testing.B) {
			in := benchInstance(b, benchParams())
			served := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dep, err := uavnet.DeployInstance(in, uavnet.Options{S: s, Workers: 2})
				if err != nil {
					b.Fatal(err)
				}
				served = dep.Served
			}
			b.ReportMetric(float64(served), "served")
		})
	}
}

// BenchmarkShardScaling measures the shard layer (PR 7) on the Fig. 6 s=3
// point: the same enumeration split into 1, 2, 4, and 8 in-process shards
// solved concurrently by ShardPool and merged. The served metric must match
// across all shard counts — sharding changes wall-clock only, never the
// answer. Speedup over shards=1 tracks available cores; on a single-core
// runner all points degenerate to the same time/op (the merge adds
// microseconds).
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("approAlg/s=3/shards=%d", shards), func(b *testing.B) {
			in := benchInstance(b, benchParams())
			pool := uavnet.ShardPool{Shards: shards}
			served := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dep, err := pool.Run(context.Background(), in, uavnet.Options{S: 3})
				if err != nil {
					b.Fatal(err)
				}
				if dep.Status != uavnet.StatusComplete {
					b.Fatalf("status %q", dep.Status)
				}
				served = dep.Served
			}
			b.ReportMetric(float64(served), "served")
		})
	}
}

// BenchmarkPortfolio measures the metaheuristic portfolio (PR 8) past the
// enumeration wall: 100 m cells on the 3x3 km area give m = 900 candidate
// locations and C(900,3) = 120,816,600 anchor subsets — at the measured
// ~2 ms per exact evaluation on this instance, an exhaustive enumeration
// would run for days. The portfolio sub-benchmarks race all four members
// under a small per-member evaluation budget; the %enum metric reports the
// spent evaluations as a percentage of the full enumeration (the issue's
// "≤1% of enumeration budget" criterion). The enum sub-benchmark runs the
// actual enumeration truncated to the same total evaluation count
// (StopAfter), so the served metrics compare the two search orders at equal
// budget. Served counts trace BENCH_8.json.
func BenchmarkPortfolio(b *testing.B) {
	// C(900,3); keep in sync with the CellSide override below.
	const enumSubsets = 120_816_600
	p := benchParams()
	p.CellSide = 100 // m = 900
	in := benchInstance(b, p)
	for _, budget := range []int64{1000, 5000} {
		b.Run(fmt.Sprintf("portfolio/s=3/budget=%d", budget), func(b *testing.B) {
			served, evals := 0, int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dep, err := uavnet.DeployInstance(in, uavnet.Options{
					S: 3, Solver: "portfolio", SolverBudget: budget, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				served, evals = dep.Served, dep.SubsetsEvaluated
			}
			b.ReportMetric(float64(served), "served")
			b.ReportMetric(100*float64(evals)/enumSubsets, "%enum")
		})
	}
	b.Run("enum/s=3/stop-after=20000", func(b *testing.B) {
		// The enumeration granted the same 4 x 5000 evaluations the
		// budget=5000 race spends: it is still walking subsets of the
		// lexicographically first cells when the budget runs out.
		served := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dep, err := uavnet.DeployInstance(in, uavnet.Options{S: 3, StopAfter: 20_000})
			if err != nil {
				b.Fatal(err)
			}
			if dep.Status != uavnet.StatusStopped {
				b.Fatalf("status %q, want stopped at the StopAfter budget", dep.Status)
			}
			served = dep.Served
		}
		b.ReportMetric(float64(served), "served")
		b.ReportMetric(100*float64(20_000)/enumSubsets, "%enum")
	})
}

// BenchmarkAblation isolates the implementation choices DESIGN.md calls
// out: subset pruning and the leftover-UAV extension pass.
func BenchmarkAblation(b *testing.B) {
	variants := []struct {
		name string
		opts uavnet.Options
	}{
		{"baseline", uavnet.Options{S: 2, Workers: 2}},
		{"no-prune", uavnet.Options{S: 2, Workers: 2, DisablePrune: true}},
		{"ground-leftovers", uavnet.Options{S: 2, Workers: 2, GroundLeftovers: true}},
		{"sampled-subsets", uavnet.Options{S: 2, Workers: 2, MaxSubsets: 40}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			in := benchInstance(b, benchParams())
			served := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dep, err := uavnet.DeployInstance(in, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				served = dep.Served
			}
			b.ReportMetric(float64(served), "served")
		})
	}
}

// BenchmarkAggregateSolve measures the demand-aggregation path (PR 6): the
// full approAlg search on an instance whose users were coarsened into
// weighted demand cells, at user counts the per-user path cannot touch. The
// per-user sub-benchmarks run the identical snapped workloads without
// aggregation — the direct cost comparison, since on snapped users the two
// paths provably serve the same count. Instance construction (binning +
// memoized radius lookups) is benchmarked separately.
func BenchmarkAggregateSolve(b *testing.B) {
	spec := func(n int) uavnet.ScenarioSpec {
		return uavnet.ScenarioSpec{
			AreaSide: 3000,
			CellSide: 500,
			N:        n,
			K:        20,
			CMin:     50,
			CMax:     300,
			Seed:     1,
			SnapSide: 250,
		}
	}
	aggOpts := uavnet.AggregateOptions{CellSide: 250}
	solve := uavnet.Options{S: 2, Workers: 2}

	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("aggregated/n=%d", n), func(b *testing.B) {
			in, err := uavnet.GenerateAggregateInstance(spec(n), aggOpts)
			if err != nil {
				b.Fatal(err)
			}
			served := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dep, err := uavnet.DeployInstance(in, solve)
				if err != nil {
					b.Fatal(err)
				}
				served = dep.Served
			}
			b.ReportMetric(float64(served), "served")
		})
	}
	for _, n := range []int{10_000, 100_000} { // 1M per-user is minutes/op
		b.Run(fmt.Sprintf("per-user/n=%d", n), func(b *testing.B) {
			in, err := uavnet.GenerateInstance(spec(n))
			if err != nil {
				b.Fatal(err)
			}
			served := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dep, err := uavnet.DeployInstance(in, solve)
				if err != nil {
					b.Fatal(err)
				}
				served = dep.Served
			}
			b.ReportMetric(float64(served), "served")
		})
	}
	b.Run("build/n=1000000", func(b *testing.B) {
		sc, err := uavnet.GenerateScenario(spec(1_000_000))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := uavnet.NewAggregateInstance(sc, aggOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAssignment measures the Section II-D max-flow oracle alone:
// optimal assignment of n users to 10 placed stations.
func BenchmarkAssignment(b *testing.B) {
	in := benchInstance(b, benchParams())
	locs := make([]int, in.Scenario.K())
	for i := range locs {
		locs[i] = i // first K cells; a legal, connected-ish placement
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uavnet.EvaluatePlacement(in, locs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstancePrecompute measures eligibility precomputation: channel
// radii, location graph, hop matrix.
func BenchmarkInstancePrecompute(b *testing.B) {
	p := benchParams()
	sc, err := uavnet.GenerateScenario(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uavnet.NewInstance(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoverageRadius measures the channel model's numeric radius
// solver used once per (UAV class, rate requirement).
func BenchmarkCoverageRadius(b *testing.B) {
	ch := uavnet.DefaultChannel()
	tx := uavnet.Transmitter{PowerDBm: 30, AntennaGainDBi: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := ch.CoverageRadius(tx, 300, 2000); r <= 0 {
			b.Fatal("no radius")
		}
	}
}

// BenchmarkQueueSim measures the discrete-event queueing simulator that
// reproduces the paper's capacity motivation.
func BenchmarkQueueSim(b *testing.B) {
	cfg := uavnet.QueueConfig{
		ArrivalRatePerUser: 0.1,
		ServiceRate:        20,
		Duration:           500,
		WarmUp:             50,
		Seed:               1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := uavnet.SimulateQueues([]int{100, 150}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioJSON measures scenario serialization round trips.
func BenchmarkScenarioJSON(b *testing.B) {
	sc, err := uavnet.GenerateScenario(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := uavnet.MarshalScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := uavnet.UnmarshalScenario(data); err != nil {
			b.Fatal(err)
		}
	}
}
