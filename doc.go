// Package uavnet deploys heterogeneous UAV communication networks for
// maximum connected coverage, implementing the algorithms of
//
//	Li, Xiang, Xu, Peng, Xu, Li, Liang, Jia.
//	"Coverage Maximization of Heterogeneous UAV Networks."
//	IEEE ICDCS 2023. DOI 10.1109/ICDCS57875.2023.00026.
//
// A disaster area holds n ground users; K UAVs with different service
// capacities C_k, transmission powers and coverage radii must hover on a
// grid of candidate locations so that the number of served users is
// maximized while (i) every served user meets its minimum data rate,
// (ii) no UAV exceeds its capacity, and (iii) the UAV-to-UAV network is
// connected.
//
// # Quick start
//
//	spec := uavnet.ScenarioSpec{N: 1000, K: 10, Seed: 42}
//	sc, err := uavnet.GenerateScenario(spec)
//	if err != nil { ... }
//	dep, err := uavnet.Deploy(sc, uavnet.Options{S: 3})
//	if err != nil { ... }
//	fmt.Println("served:", dep.Served)
//
// Deploy runs the paper's O(sqrt(s/K))-approximation algorithm (approAlg).
// DeployWith selects one of the reimplemented baselines (MCS, MotionCtrl,
// GreedyAssign, maxThroughput) for comparison, and EvaluatePlacement scores
// any hand-chosen placement with the optimal max-flow user assignment.
//
// The packages under internal/ hold the substrates: the air-to-ground
// channel model, max-flow assignment, matroid machinery, workload
// generators, a per-UAV queueing simulator, and user-mobility models. The
// root package re-exports everything a downstream application needs.
package uavnet
