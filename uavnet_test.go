package uavnet_test

import (
	"path/filepath"
	"strings"
	"testing"

	uavnet "github.com/uav-coverage/uavnet"
)

func quickSpec() uavnet.ScenarioSpec {
	return uavnet.ScenarioSpec{
		AreaSide: 2000,
		CellSide: 500,
		N:        100,
		K:        5,
		CMin:     10,
		CMax:     50,
		Seed:     7,
	}
}

func TestGenerateScenarioDefaults(t *testing.T) {
	sc, err := uavnet.GenerateScenario(uavnet.ScenarioSpec{N: 50, K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.N() != 50 || sc.K() != 3 {
		t.Errorf("N,K = %d,%d", sc.N(), sc.K())
	}
	if sc.Grid.Length != 3000 || sc.Grid.Side != 500 || sc.Grid.Altitude != 300 {
		t.Errorf("grid defaults wrong: %+v", sc.Grid)
	}
	if sc.UAVRange != 600 {
		t.Errorf("UAVRange = %g, want 600", sc.UAVRange)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("generated scenario invalid: %v", err)
	}
}

func TestDeployEndToEnd(t *testing.T) {
	sc, err := uavnet.GenerateScenario(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := uavnet.Deploy(sc, uavnet.Options{S: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Served <= 0 {
		t.Errorf("Served = %d, want positive", dep.Served)
	}
	in, err := uavnet.NewInstance(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !uavnet.Connected(in, dep) {
		t.Error("deployment not connected")
	}
}

func TestDeployWithAllAlgorithms(t *testing.T) {
	in, err := uavnet.GenerateInstance(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	apro := -1
	for _, name := range uavnet.AlgorithmNames() {
		dep, err := uavnet.DeployWith(name, in, uavnet.Options{S: 2, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !uavnet.Connected(in, dep) {
			t.Errorf("%s produced a disconnected network", name)
		}
		if dep.Algorithm == "" {
			t.Errorf("%s left Algorithm empty", name)
		}
		if name == "approAlg" {
			apro = dep.Served
		} else if dep.Served > apro {
			t.Errorf("%s served %d > approAlg %d", name, dep.Served, apro)
		}
	}
}

func TestDeployWithUnknown(t *testing.T) {
	in, err := uavnet.GenerateInstance(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uavnet.DeployWith("magic", in, uavnet.Options{}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestEvaluatePlacement(t *testing.T) {
	in, err := uavnet.GenerateInstance(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	locs := make([]int, in.Scenario.K())
	for i := range locs {
		locs[i] = -1
	}
	locs[0] = 0
	dep, err := uavnet.EvaluatePlacement(in, locs)
	if err != nil {
		t.Fatal(err)
	}
	if dep.DeployedCount() != 1 {
		t.Errorf("DeployedCount = %d, want 1", dep.DeployedCount())
	}
	// Duplicate locations must be rejected.
	locs[1] = 0
	if _, err := uavnet.EvaluatePlacement(in, locs); err == nil {
		t.Error("duplicate cells should fail")
	}
}

func TestDeployOptimalTiny(t *testing.T) {
	spec := quickSpec()
	spec.AreaSide = 1500 // 9 cells
	spec.K = 3
	spec.N = 20
	in, err := uavnet.GenerateInstance(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := uavnet.DeployOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := uavnet.DeployInstance(in, uavnet.Options{S: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if apx.Served > opt.Served {
		t.Errorf("approx %d beats optimum %d", apx.Served, opt.Served)
	}
}

func TestPlanBudgetAndRatio(t *testing.T) {
	b, err := uavnet.PlanBudget(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.LMax < 3 || b.G > 20 {
		t.Errorf("budget %+v out of bounds", b)
	}
	if r := uavnet.ApproxRatio(20, 3); r <= 0 || r > 1 {
		t.Errorf("ratio %g out of range", r)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc, err := uavnet.GenerateScenario(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	data, err := uavnet.MarshalScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := uavnet.UnmarshalScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != sc.N() || back.K() != sc.K() || back.UAVRange != sc.UAVRange {
		t.Error("round trip lost data")
	}
	for i := range sc.Users {
		if back.Users[i] != sc.Users[i] {
			t.Fatalf("user %d differs", i)
		}
	}
	for k := range sc.UAVs {
		if back.UAVs[k] != sc.UAVs[k] {
			t.Fatalf("UAV %d differs", k)
		}
	}
}

func TestScenarioFileRoundTrip(t *testing.T) {
	sc, err := uavnet.GenerateScenario(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := uavnet.SaveScenario(path, sc); err != nil {
		t.Fatal(err)
	}
	back, err := uavnet.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != sc.N() {
		t.Error("file round trip lost users")
	}
}

func TestUnmarshalScenarioErrors(t *testing.T) {
	if _, err := uavnet.UnmarshalScenario([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := uavnet.UnmarshalScenario([]byte(`{"version": 99, "scenario": null}`)); err == nil {
		t.Error("wrong version should fail")
	}
	if _, err := uavnet.UnmarshalScenario([]byte(`{"version": 1}`)); err == nil {
		t.Error("missing scenario should fail")
	}
	if _, err := uavnet.UnmarshalScenario([]byte(`{"version": 1, "scenario": {}}`)); err == nil {
		t.Error("invalid scenario should fail")
	}
}

func TestLoadScenarioMissingFile(t *testing.T) {
	if _, err := uavnet.LoadScenario(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestMarshalInvalidScenario(t *testing.T) {
	if _, err := uavnet.MarshalScenario(&uavnet.Scenario{}); err == nil {
		t.Error("invalid scenario should not marshal")
	}
}

func TestQueueFacade(t *testing.T) {
	cfg := uavnet.QueueConfig{
		ArrivalRatePerUser: 0.1,
		ServiceRate:        20,
		Duration:           300,
		WarmUp:             30,
		Seed:               1,
	}
	stats, err := uavnet.SimulateQueues([]int{100}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Completed == 0 {
		t.Error("no completions")
	}
	if c := uavnet.StableCapacity(cfg, 0.8); c != 160 {
		t.Errorf("StableCapacity = %d, want 160", c)
	}
	if v := uavnet.TheoreticalMeanSojourn(100, cfg); v <= 0 {
		t.Errorf("theory %g", v)
	}
}

func TestLoadsOf(t *testing.T) {
	in, err := uavnet.GenerateInstance(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := uavnet.DeployInstance(in, uavnet.Options{S: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	loads := uavnet.LoadsOf(dep)
	if len(loads) != in.Scenario.K() {
		t.Fatalf("loads %v, want one per UAV", loads)
	}
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != dep.Served {
		t.Errorf("loads sum to %d, served %d", total, dep.Served)
	}
	// Mutating the copy must not touch the deployment.
	if len(loads) > 0 {
		loads[0] = -99
		if dep.Assignment.PerStation[0] == -99 {
			t.Error("LoadsOf aliases internal state")
		}
	}
}

func TestMobilityFacade(t *testing.T) {
	sc, err := uavnet.GenerateScenario(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	model, err := uavnet.NewRandomWaypoint(sc.Grid, sc.N(), 1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	positions := make([]uavnet.Point, sc.N())
	for i, u := range sc.Users {
		positions[i] = u.Pos
	}
	before := append([]uavnet.Point(nil), positions...)
	if err := model.Step(positions, 30); err != nil {
		t.Fatal(err)
	}
	drift, err := uavnet.MeanDisplacement(before, positions)
	if err != nil {
		t.Fatal(err)
	}
	if drift <= 0 {
		t.Errorf("drift = %g, want positive", drift)
	}
}

func TestAlgorithmNamesOrder(t *testing.T) {
	names := uavnet.AlgorithmNames()
	if names[0] != "approAlg" {
		t.Errorf("first algorithm = %s", names[0])
	}
	joined := strings.Join(names, ",")
	if joined != "approAlg,MCS,MotionCtrl,GreedyAssign,maxThroughput" {
		t.Errorf("names = %s", joined)
	}
}

func TestEnvironmentsExported(t *testing.T) {
	for _, env := range []uavnet.Environment{uavnet.Suburban, uavnet.Urban, uavnet.DenseUrban, uavnet.Highrise} {
		if env.Name == "" || env.B <= 0 {
			t.Errorf("bad environment %+v", env)
		}
	}
	if uavnet.DefaultChannel().Env.Name != "urban" {
		t.Error("default channel should be urban")
	}
}
